// Vertex index over a sorted edge-key store: first-edge position, edge
// rank, and degree per vertex, rebuilt in one parallel pass over the
// store's leaves.
//
// Extracted from FGraphT::prepare() so the same build runs over anything
// exposing the flattened-leaf surface: a single engine (CPMA), a
// ShardedPMA, or a pinned immutable SnapshotView (graph/streaming.hpp).
// Positions stored in the index are invalidated by ANY update to a
// mutable source — callers either rebuild after batches (FGraph protocol)
// or build over an immutable epoch-pinned view, where positions stay
// valid for the life of the pin.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/edge.hpp"
#include "parallel/scan.hpp"
#include "parallel/scheduler.hpp"

namespace cpma::graph {

template <typename Source>
class VertexIndex {
 public:
  using Position = typename Source::Position;

  // Rebuilds the index for vertices [0, n) from `src`'s current leaves.
  // Cost is part of algorithm time, exactly the paper's Section 6 protocol
  // ("this experiment rebuilds the vertex array with each run").
  void build(const Source& src, vertex_t n) {
    n_ = n;
    first_.resize(n_);
    rank_.resize(static_cast<size_t>(n_) + 1);
    has_edges_.resize(n_);
    par::parallel_for(0, n_, [&](uint64_t v) {
      rank_[v] = kNoRank;
      has_edges_[v] = 0;
    });
    rank_[n_] = kNoRank;
    const uint64_t leaves = src.num_leaves();
    // Rank offset of each leaf.
    std::vector<uint64_t> offsets(leaves);
    par::parallel_for(0, leaves, [&](uint64_t l) {
      offsets[l] = src.leaf_element_count(l);
    }, 8);
    uint64_t total = par::exclusive_scan_inplace(offsets);
    // Per-leaf: record vertex starts at src changes inside the leaf, plus
    // the position of each leaf's first key; the first key starts a vertex
    // iff the previous nonempty leaf ended with a different src (stitched
    // below with no rescanning).
    std::vector<uint64_t> first_src(leaves, kNoVertex);
    std::vector<uint64_t> last_src(leaves, kNoVertex);
    std::vector<Position> first_pos(leaves);
    par::parallel_for(0, leaves, [&](uint64_t l) {
      uint64_t idx = 0;
      uint64_t prev_src = kNoVertex;
      src.scan_leaf_positions(l, [&](Position pos, uint64_t key) {
        vertex_t s = edge_src(key);
        if (idx == 0) {
          first_src[l] = s;
          first_pos[l] = pos;
        }
        if (prev_src != kNoVertex && s != prev_src) {
          first_[s] = pos;
          rank_[s] = offsets[l] + idx;
          has_edges_[s] = 1;
        }
        prev_src = s;
        last_src[l] = s;
        ++idx;
      });
    }, 4);
    // Stitch leaf boundaries: a leaf's first key starts its vertex iff no
    // earlier nonempty leaf ended with the same src.
    uint64_t prev = kNoVertex;
    for (uint64_t l = 0; l < leaves; ++l) {
      if (first_src[l] == kNoVertex) continue;  // empty leaf
      if (first_src[l] != prev) {
        vertex_t s = static_cast<vertex_t>(first_src[l]);
        first_[s] = first_pos[l];
        rank_[s] = offsets[l];
        has_edges_[s] = 1;
      }
      prev = last_src[l];
    }
    // Degrees: distance between consecutive ranks (reverse chunked carry so
    // the O(n) pass is parallel).
    rank_[n_] = total;
    degree_.resize(n_);
    const uint64_t chunk = 8192;
    const uint64_t num_chunks = (n_ + chunk - 1) / chunk;
    std::vector<uint64_t> chunk_first_rank(num_chunks + 1, total);
    par::parallel_for(0, num_chunks, [&](uint64_t c) {
      uint64_t lo = c * chunk, hi = std::min<uint64_t>(n_, lo + chunk);
      for (uint64_t v = lo; v < hi; ++v) {
        if (has_edges_[v]) {
          chunk_first_rank[c] = rank_[v];
          break;
        }
      }
    }, 1);
    // Backward carry: first set rank at or after each chunk's end.
    std::vector<uint64_t> carry(num_chunks, total);
    uint64_t run = total;
    for (uint64_t c = num_chunks; c-- > 0;) {
      carry[c] = run;
      if (chunk_first_rank[c] != total) run = chunk_first_rank[c];
    }
    par::parallel_for(0, num_chunks, [&](uint64_t c) {
      uint64_t lo = c * chunk, hi = std::min<uint64_t>(n_, lo + chunk);
      uint64_t next_rank = carry[c];
      for (uint64_t v = hi; v-- > lo;) {
        if (has_edges_[v]) {
          degree_[v] = next_rank - rank_[v];
          next_rank = rank_[v];
        } else {
          degree_[v] = 0;
        }
      }
    }, 1);
    valid_ = true;
  }

  bool valid() const { return valid_; }
  void invalidate() { valid_ = false; }

  vertex_t num_vertices() const { return n_; }
  bool has_edges(vertex_t v) const { return has_edges_[v] != 0; }
  const Position& first(vertex_t v) const { return first_[v]; }
  uint64_t degree(vertex_t v) const { return degree_[v]; }

  uint64_t bytes() const {
    return first_.capacity() * sizeof(Position) + rank_.capacity() * 8 +
           degree_.capacity() * 8 + has_edges_.capacity();
  }

 private:
  static constexpr uint64_t kNoVertex = ~uint64_t{0};
  static constexpr uint64_t kNoRank = ~uint64_t{0};

  vertex_t n_ = 0;
  bool valid_ = false;
  std::vector<Position> first_;
  std::vector<uint64_t> rank_;
  std::vector<uint64_t> degree_;
  std::vector<uint8_t> has_edges_;
};

}  // namespace cpma::graph
