// Hardware cache-miss counters via perf_event_open, used to reproduce the
// paper's Table 1 (L1/L3 misses during batch inserts, measured there with
// `perf stat`).
//
// Containers and locked-down kernels frequently refuse perf_event_open; in
// that case `available()` is false and the Table 1 bench falls back to a
// software proxy (bytes moved), which preserves the ordering the paper
// reports (compressed structures move fewer bytes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cpma::util {

struct PerfSample {
  uint64_t l1d_misses = 0;
  uint64_t llc_misses = 0;
  bool valid = false;
};

class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const { return available_; }
  void start();
  PerfSample stop();

 private:
  bool available_ = false;
  int fd_l1_ = -1;
  int fd_llc_ = -1;
};

}  // namespace cpma::util
