// A std::vector that default-initializes (i.e. leaves POD memory
// uninitialized) instead of value-initializing.
//
// Why: `std::vector<uint64_t> v(n)` zero-fills n*8 bytes serially before the
// parallel phase overwrites them. For the multi-megabyte scratch buffers of
// the batch paths that serial memset (plus the page faults it takes on one
// thread) dominated the measured runtime. `uvector` defers the first touch
// to the parallel writers.
#pragma once

#include <memory>
#include <vector>

namespace cpma::util {

template <typename T, typename A = std::allocator<T>>
class default_init_allocator : public A {
  using traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other =
        default_init_allocator<U, typename traits::template rebind_alloc<U>>;
  };

  using A::A;

  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;  // default-init: no zeroing for PODs
  }
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

template <typename T>
using uvector = std::vector<T, default_init_allocator<T>>;

}  // namespace cpma::util
