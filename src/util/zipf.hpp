// Zipfian key generator following the YCSB construction (Gray et al.'s
// rejection-free inverse-CDF approximation). The paper draws 34-bit keys with
// skew alpha = 0.99 "parameter taken from the YCSB" for the skewed
// batch-insert experiments (Table 5, Fig. 11 / Table 13).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/random.hpp"

namespace cpma::util {

class ZipfGenerator {
 public:
  // Generates ranks in [0, n) with P(rank = r) proportional to 1/(r+1)^theta,
  // then scatters ranks over the key space so hot keys are not clustered
  // (YCSB's "scrambled zipfian").
  ZipfGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 0)
      : n_(n), theta_(theta), seed_(seed) {
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Draw i of the stream; random-access like uniform_key so parallel
  // generation is deterministic.
  uint64_t rank(uint64_t i) const {
    double u =
        static_cast<double>(hash64(seed_ ^ hash64(i)) >> 11) * 0x1.0p-53;
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    double r = static_cast<double>(n_) *
               std::pow(eta_ * u - eta_ + 1.0, alpha_);
    uint64_t rr = static_cast<uint64_t>(r);
    return rr >= n_ ? n_ - 1 : rr;
  }

  // Scrambled zipfian key in [1, 2^bits): hot ranks hash to scattered keys.
  uint64_t key(uint64_t i, unsigned bits = 34) const {
    uint64_t mask = (uint64_t{1} << bits) - 1;
    uint64_t k = hash64(rank(i) * 0x9e3779b97f4a7c15ULL) & mask;
    return k == 0 ? 1 : k;
  }

 private:
  static double zeta(uint64_t n, double theta) {
    // Direct summation is fine here: we only evaluate it at construction.
    // For very large n use the integral approximation to bound the cost.
    if (n <= (1 << 20)) {
      double sum = 0;
      for (uint64_t i = 1; i <= n; ++i) sum += std::pow(1.0 / i, theta);
      return sum;
    }
    double head = zeta(1 << 20, theta);
    // integral_{2^20}^{n} x^-theta dx
    double a = 1.0 - theta;
    double tail =
        (std::pow(static_cast<double>(n), a) - std::pow(1048576.0, a)) / a;
    return head + tail;
  }

  uint64_t n_;
  double theta_;
  uint64_t seed_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace cpma::util
