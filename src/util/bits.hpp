// Small bit-manipulation helpers shared across the library.
#pragma once

#include <cstdint>
#include <bit>

namespace cpma::util {

// Floor of log2(x); x must be nonzero.
constexpr uint64_t log2_floor(uint64_t x) {
  return 63u - static_cast<uint64_t>(std::countl_zero(x));
}

// Ceiling of log2(x); x must be nonzero. log2_ceil(1) == 0.
constexpr uint64_t log2_ceil(uint64_t x) {
  return (x <= 1) ? 0 : log2_floor(x - 1) + 1;
}

// Smallest power of two >= x (x >= 1).
constexpr uint64_t next_pow2(uint64_t x) { return uint64_t{1} << log2_ceil(x); }

constexpr bool is_pow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr uint64_t div_round_up(uint64_t a, uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace cpma::util
