#include "util/perf_counters.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

namespace cpma::util {
namespace {

int open_counter(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count across the worker threads too
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

uint64_t read_counter(int fd) {
  uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value)) value = 0;
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  fd_l1_ = open_counter(
      PERF_TYPE_HW_CACHE,
      PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
          (PERF_COUNT_HW_CACHE_RESULT_MISS << 16));
  fd_llc_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  available_ = fd_l1_ >= 0 && fd_llc_ >= 0;
}

PerfCounters::~PerfCounters() {
  if (fd_l1_ >= 0) close(fd_l1_);
  if (fd_llc_ >= 0) close(fd_llc_);
}

void PerfCounters::start() {
  if (!available_) return;
  ioctl(fd_l1_, PERF_EVENT_IOC_RESET, 0);
  ioctl(fd_llc_, PERF_EVENT_IOC_RESET, 0);
  ioctl(fd_l1_, PERF_EVENT_IOC_ENABLE, 0);
  ioctl(fd_llc_, PERF_EVENT_IOC_ENABLE, 0);
}

PerfSample PerfCounters::stop() {
  PerfSample s;
  if (!available_) return s;
  ioctl(fd_l1_, PERF_EVENT_IOC_DISABLE, 0);
  ioctl(fd_llc_, PERF_EVENT_IOC_DISABLE, 0);
  s.l1d_misses = read_counter(fd_l1_);
  s.llc_misses = read_counter(fd_llc_);
  s.valid = true;
  return s;
}

}  // namespace cpma::util

#else  // !__linux__

namespace cpma::util {
PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
PerfSample PerfCounters::stop() { return {}; }
}  // namespace cpma::util

#endif
