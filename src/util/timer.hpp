// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace cpma::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Runs f() `trials` times after `warmup` warmup runs and returns the mean
// wall-clock seconds — matching the paper's "average of 10 trials after a
// single warm up trial" protocol (scaled down via the harness knobs).
template <typename F>
double time_trials(F&& f, int trials = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) f();
  double total = 0;
  for (int i = 0; i < trials; ++i) {
    Timer t;
    f();
    total += t.elapsed_seconds();
  }
  return total / trials;
}

}  // namespace cpma::util
