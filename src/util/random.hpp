// Deterministic, cheap pseudo-random generators used by the workload
// generators and tests. We avoid <random> engines in hot loops: the paper's
// workloads (40-bit uniform keys, RMAT edges) need billions of draws and a
// splittable, seekable stream so parallel generation stays deterministic.
#pragma once

#include <cstdint>

namespace cpma::util {

// SplitMix64: a high-quality 64-bit mixer. `hash64(i)` gives random-access
// draws (draw i of a stream), which makes parallel workload generation
// deterministic regardless of the worker schedule.
constexpr uint64_t hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Sequential splitmix64 stream for when random access is not needed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return hash64_mix(state_);
  }

  // Uniform in [0, bound). Bias is negligible for bound << 2^64.
  uint64_t next_below(uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr uint64_t hash64_mix(uint64_t x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  uint64_t state_;
};

// Draw i of a b-bit uniform key stream (keys are nonzero: key 0 is the
// PMA's empty-cell sentinel, so generators avoid it).
inline uint64_t uniform_key(uint64_t seed, uint64_t i, unsigned bits = 40) {
  uint64_t mask = (bits >= 64) ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  uint64_t k = hash64(seed ^ hash64(i)) & mask;
  return k == 0 ? 1 : k;
}

}  // namespace cpma::util
