// Environment-variable knobs for the benchmark harnesses.
//
// The paper's experiments start from 100M-element structures on a 64-core
// machine; the default sizes here are scaled so that every bench binary
// finishes in seconds on a laptop-class box. Set CPMA_BENCH_SCALE (a
// multiplier) or the specific knobs to approach paper scale.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace cpma::util {

inline uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

// Global multiplier applied to benchmark base sizes.
inline double bench_scale() { return env_double("CPMA_BENCH_SCALE", 1.0); }

inline uint64_t scaled(uint64_t base) {
  double s = bench_scale();
  uint64_t v = static_cast<uint64_t>(static_cast<double>(base) * s);
  return v == 0 ? 1 : v;
}

}  // namespace cpma::util
