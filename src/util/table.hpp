// Minimal fixed-width table printer so each bench binary can emit rows shaped
// like the paper's tables (throughputs in scientific notation, ratios with
// one decimal).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace cpma::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i)
      for (int j = 0; j < width_; ++j) std::printf("-");
    std::printf("\n");
  }

  void begin_row() const {}
  void cell_str(const std::string& s) const {
    std::printf("%*s", width_, s.c_str());
  }
  void cell_u64(uint64_t v) const { std::printf("%*llu", width_, (unsigned long long)v); }
  // Scientific notation like the paper's "3.0E6".
  void cell_sci(double v) const { std::printf("%*.1E", width_, v); }
  void cell_ratio(double v) const { std::printf("%*.2f", width_, v); }
  void cell_fixed(double v, int prec = 3) const {
    std::printf("%*.*f", width_, prec, v);
  }
  void end_row() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

}  // namespace cpma::util
