// CRC32C (Castagnoli) — the checksum guarding every durable byte the
// checkpoint/WAL layer writes (src/durable/).
//
// CRC32C is the storage-stack convention (iSCSI, ext4, LevelDB/RocksDB WAL
// frames) because its polynomial has hardware support: SSE4.2 ships a
// per-8-byte `crc32` instruction. The software fallback is slice-by-8 over
// compile-time tables — one table lookup per input byte across eight
// parallel streams, ~1 GB/s class, fast enough that checksumming is never
// the bottleneck of a checkpoint write (the encode pass is).
//
// The implementation is the reflected (LSB-first) form, seed/xorout
// 0xFFFFFFFF, matching the RFC 3720 test vector:
//   crc32c("123456789") == 0xE3069283.
// `crc32c(data, n, prev)` chains: pass the previous result to extend a
// checksum over discontiguous buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#ifndef CPMA_SIMD
#define CPMA_SIMD 1
#endif

#if CPMA_SIMD && defined(__SSE4_2__)
#include <nmmintrin.h>
#define CPMA_CRC32C_HW 1
#else
#define CPMA_CRC32C_HW 0
#endif

namespace cpma::util {

namespace crc_detail {

constexpr uint32_t kPoly = 0x82f63b78u;  // CRC32C, reflected

struct Tables {
  uint32_t t[8][256];
};

constexpr Tables make_tables() {
  Tables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
    tb.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tb.t[0][i];
    for (int j = 1; j < 8; ++j) {
      c = tb.t[0][c & 0xff] ^ (c >> 8);
      tb.t[j][i] = c;
    }
  }
  return tb;
}

inline constexpr Tables kTables = make_tables();

}  // namespace crc_detail

// CRC32C of `n` bytes at `data`; chain discontiguous buffers by passing the
// previous return value as `prev` (0 starts a fresh checksum).
inline uint32_t crc32c(const void* data, size_t n, uint32_t prev = 0) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~prev;
#if CPMA_CRC32C_HW
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, word));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
#else
  const auto& t = crc_detail::kTables.t;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian: low 4 bytes absorb the running crc
    crc = t[7][word & 0xff] ^ t[6][(word >> 8) & 0xff] ^
          t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
          t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
          t[1][(word >> 48) & 0xff] ^ t[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
#endif
  return ~crc;
}

}  // namespace cpma::util
